package serve

import (
	"bufio"
	"container/list"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"distcolor/internal/graph"
)

// GraphStore caches graphs in CSR form behind opaque IDs so repeated jobs
// on the same graph never re-parse or re-generate. It is a strict LRU
// bounded by total resident adjacency weight (heap-held int32 entries: the
// CSR arrays for parsed graphs, plus the delivery mirror once a graph has
// actually run a message-plane job; mmap'd graphs' file-backed pages are
// reclaimable by the OS and cost 0 until they materialize a mirror).
//
// With spilling enabled (EnableSpill), eviction stops being destructive:
// instead of forgetting a cold graph the store writes it once as a .dcsr
// image (or keeps the image it already has) in a bounded on-disk cache,
// and a later request for the same ID re-admits it with an O(1) page map
// instead of a re-parse or re-generate. Evicted graphs stay alive while
// running jobs hold references either way — dropping the store's reference
// never unmaps memory a job can still touch (the mapping is released by a
// GC cleanup after the last holder is gone).
//
// Graphs built from a generator spec are additionally deduplicated by
// (spec, seed): uploading the same spec twice returns the first ID with no
// rebuild, since generation is deterministic in (spec, seed). The dedup
// index survives spilling.
type GraphStore struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	seq     uint64
	items   map[string]*list.Element // graph ID → LRU element
	bySpec  map[string]*list.Element // "seed@spec" → LRU element
	lru     *list.List               // front = most recent; values are *storedGraph
	evicted int64
	hits    int64
	misses  int64

	// Spill state (zero when disabled).
	spillDir      string
	spillCap      int64                    // bound on diskUsed; ≤0 = unbounded
	diskUsed      int64                    // bytes of every .dcsr file the store owns
	coldBytes     int64                    // subset of diskUsed belonging to non-resident graphs
	mappedBytes   int64                    // .dcsr bytes backing resident mmap'd graphs
	spilled       map[string]*spilledGraph // graph ID → cold image
	spilledBySpec map[string]*spilledGraph
	spillLRU      *list.List // front = most recently spilled; values are *spilledGraph
	spills        int64
	readmits      int64
	spillDrops    int64
}

type storedGraph struct {
	id        string
	g         *graph.Graph
	weight    int64  // heap entries currently charged (see heapWeight)
	specKey   string // non-empty for gen-spec graphs (dedup key)
	mapped    bool   // CSR arrays alias an mmap'd .dcsr image
	file      string // on-disk .dcsr image, "" if none exists yet
	fileBytes int64
}

// spilledGraph is a graph the LRU pushed out of RAM but whose .dcsr image
// is kept on disk for O(1) re-admission.
type spilledGraph struct {
	id      string
	specKey string
	file    string
	bytes   int64
	el      *list.Element
}

// specIDPrefix marks graph IDs derived from a generator spec. Such IDs are
// a pure function of (spec, seed), so every replica computes the same ID
// for the same graph — the property the cluster tier routes on. Sequence
// IDs ("g1", "g2", …) can never collide with the prefix: their second byte
// is a digit.
const specIDPrefix = "gs"

// specKeyFor is the store's dedup key for one generated graph. Seed first:
// it is digits-only, so the first '@' always delimits it and a spec
// containing '@' can never collide with another (spec, seed) pair.
func specKeyFor(spec string, seed uint64) string { return fmt.Sprintf("%d@%s", seed, spec) }

// specGraphID derives the fleet-deterministic graph ID from a store spec
// key ("seed@spec"): gs + 32 hex characters of FNV-1a-128 over the key.
func specGraphID(specKey string) string {
	h := fnv.New128a()
	io.WriteString(h, specKey)
	return specIDPrefix + hex.EncodeToString(h.Sum(nil))
}

// IsSpecGraphID reports whether id is a spec-derived (fleet-routable)
// graph ID.
func IsSpecGraphID(id string) bool {
	return strings.HasPrefix(id, specIDPrefix) && len(id) == len(specIDPrefix)+32
}

// graphWeight is the store accounting unit for one heap-resident graph:
// the CSR offsets plus neighbor array (n + 2m int32 entries), plus the
// same-sized mirror array (another 2m) once — and only once — the
// message-passing engine has materialized it. A graph that never ran a
// message-plane job does not pay for a mirror it doesn't have.
func graphWeight(g *graph.Graph) int64 {
	w := int64(g.N()) + 2*int64(g.M())
	if g.HasMirror() {
		w += 2 * int64(g.M())
	}
	return w
}

// heapWeight is graphWeight restricted to what actually lives on the Go
// heap: an mmap'd graph's CSR arrays are file-backed pages the OS can
// reclaim, so only its (lazily built) mirror counts.
func heapWeight(sg *storedGraph) int64 {
	if !sg.mapped {
		return graphWeight(sg.g)
	}
	if sg.g.HasMirror() {
		return 2 * int64(sg.g.M())
	}
	return 0
}

// NewGraphStore returns a store bounded by capacity adjacency entries
// (vertices + directed edges). A capacity ≤ 0 panics: a serving layer with
// no graph cache cannot meet its latency contract.
func NewGraphStore(capacity int64) *GraphStore {
	if capacity <= 0 {
		panic("serve: graph store capacity must be positive")
	}
	return &GraphStore{
		cap:           capacity,
		items:         make(map[string]*list.Element),
		bySpec:        make(map[string]*list.Element),
		lru:           list.New(),
		spilled:       make(map[string]*spilledGraph),
		spilledBySpec: make(map[string]*spilledGraph),
		spillLRU:      list.New(),
	}
}

// EnableSpill turns eviction into spilling: evicted graphs are written
// once as .dcsr images under dir (created if missing) and re-admitted by
// page map on the next request. maxBytes bounds the total bytes of images
// the store keeps on disk (resident mmap'd graphs included); ≤ 0 means
// unbounded. Call before the store is shared.
func (s *GraphStore) EnableSpill(dir string, maxBytes int64) error {
	if dir == "" {
		return fmt.Errorf("serve: spill dir must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating spill dir: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spillDir = dir
	s.spillCap = maxBytes
	return nil
}

// Add inserts g and returns its fresh ID, evicting (or spilling)
// least-recently-used residents as needed. Graphs heavier than the whole
// capacity are rejected.
func (s *GraphStore) Add(g *graph.Graph) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	sg := &storedGraph{id: fmt.Sprintf("g%d", s.seq), g: g}
	if err := s.admit(sg); err != nil {
		return "", err
	}
	return sg.id, nil
}

// AddMapped inserts a graph opened from a .dcsr image whose file the store
// takes ownership of: file must live under the spill directory, and from
// now on the store decides when it is deleted. The graph's file-backed
// bytes are charged to the disk budget, not the RAM budget — eviction
// keeps the file and re-admission is a page map.
func (s *GraphStore) AddMapped(mg *graph.MappedGraph, file string, fileBytes int64) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spillDir == "" {
		return "", fmt.Errorf("serve: AddMapped requires spilling to be enabled")
	}
	s.seq++
	sg := &storedGraph{
		id:        fmt.Sprintf("g%d", s.seq),
		g:         mg.Graph,
		mapped:    mg.Mapped(),
		file:      file,
		fileBytes: fileBytes,
	}
	if err := s.admit(sg); err != nil {
		return "", err
	}
	s.diskUsed += fileBytes
	if sg.mapped {
		s.mappedBytes += fileBytes
	}
	s.enforceSpillCap()
	return sg.id, nil
}

// AddSpec inserts the graph generated from (spec, seed), deduplicating:
// if that exact pair is resident — or spilled — its existing ID and graph
// are returned with cached=true and no graph is built. generate is only
// called on a full miss. source reports how the graph materialized this
// time: "ram" (resident), "mmap" (re-admitted from a spilled image), or
// "parse" (generated). The graph is returned directly — callers must not
// re-Get by ID, since a concurrent insert burst could evict the entry in
// between.
func (s *GraphStore) AddSpec(spec string, seed uint64, generate func() (*graph.Graph, error)) (id string, g *graph.Graph, cached bool, source string, err error) {
	key := specKeyFor(spec, seed)
	s.mu.Lock()
	if el, ok := s.bySpec[key]; ok {
		sg := el.Value.(*storedGraph)
		s.hits++
		s.touch(el)
		s.mu.Unlock()
		return sg.id, sg.g, true, residentSource(sg), nil
	}
	if sp, ok := s.spilledBySpec[key]; ok {
		if sg, ok := s.readmit(sp); ok {
			s.hits++
			s.mu.Unlock()
			return sg.id, sg.g, true, "mmap", nil
		}
	}
	s.mu.Unlock()
	// Generate outside the lock: specs can take a while and the store must
	// keep serving. A racing identical upload may insert first; re-check.
	g, err = generate()
	if err != nil {
		return "", nil, false, "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.bySpec[key]; ok {
		// A racing identical upload won; this caller still generated, so the
		// work it did counts as a miss even though it gets the cached entry.
		sg := el.Value.(*storedGraph)
		s.touch(el)
		s.misses++
		return sg.id, sg.g, true, residentSource(sg), nil
	}
	s.misses++
	sg := &storedGraph{id: specGraphID(key), g: g, specKey: key}
	if old, ok := s.items[sg.id]; ok {
		// A 128-bit collision between distinct spec keys (the only way to
		// get here — identical keys are deduplicated by bySpec) is
		// astronomically unlikely; keep the invariant anyway.
		s.forget(old)
	}
	if sp, ok := s.spilled[sg.id]; ok {
		s.dropSpilled(sp)
	}
	if err := s.admit(sg); err != nil {
		return "", nil, false, "", err
	}
	return sg.id, g, false, "parse", nil
}

func residentSource(sg *storedGraph) string {
	if sg.mapped {
		return "mmap"
	}
	return "ram"
}

// admit charges sg and pushes it to the LRU front, evicting from the back
// to make room. The entry being admitted is protected: a graph whose own
// weight exceeds what eviction can free is allowed to overshoot the cap
// transiently rather than deadlock the store (only fully heap-resident
// graphs heavier than the entire capacity are rejected outright).
func (s *GraphStore) admit(sg *storedGraph) error {
	sg.weight = heapWeight(sg)
	if !sg.mapped && sg.weight > s.cap {
		return fmt.Errorf("serve: graph weight %d exceeds store capacity %d", sg.weight, s.cap)
	}
	for s.used+sg.weight > s.cap {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.evict(oldest)
	}
	el := s.lru.PushFront(sg)
	s.items[sg.id] = el
	if sg.specKey != "" {
		s.bySpec[sg.specKey] = el
	}
	s.used += sg.weight
	return nil
}

// touch bumps recency and re-weighs the entry: the mirror array appears
// lazily (first message-plane job), so an entry's heap footprint can grow
// between lookups. Growth may push the store over cap; evict colder
// entries but never the one just touched.
func (s *GraphStore) touch(el *list.Element) {
	s.lru.MoveToFront(el)
	sg := el.Value.(*storedGraph)
	if w := heapWeight(sg); w != sg.weight {
		s.used += w - sg.weight
		sg.weight = w
		for s.used > s.cap {
			oldest := s.lru.Back()
			if oldest == nil || oldest == el {
				break
			}
			s.evict(oldest)
		}
	}
}

// detach removes el from the resident maps and uncharges its weight.
func (s *GraphStore) detach(el *list.Element) *storedGraph {
	sg := el.Value.(*storedGraph)
	s.lru.Remove(el)
	delete(s.items, sg.id)
	if sg.specKey != "" {
		delete(s.bySpec, sg.specKey)
	}
	s.used -= sg.weight
	if sg.mapped {
		s.mappedBytes -= sg.fileBytes
	}
	return sg
}

// evict pushes the LRU-coldest resident out of RAM: spill the .dcsr image
// (writing it now if the graph never had one) when spilling is enabled,
// otherwise forget the graph entirely.
func (s *GraphStore) evict(el *list.Element) {
	sg := s.detach(el)
	s.evicted++
	if s.spillDir == "" {
		return
	}
	file, bytes := sg.file, sg.fileBytes
	if file == "" {
		var err error
		file, bytes, err = s.writeSpill(sg)
		if err != nil {
			// Disk refused the image; the eviction degrades to the
			// spill-less behavior (forget) rather than failing the insert
			// that triggered it.
			return
		}
		s.diskUsed += bytes
	}
	sp := &spilledGraph{id: sg.id, specKey: sg.specKey, file: file, bytes: bytes}
	sp.el = s.spillLRU.PushFront(sp)
	s.spilled[sp.id] = sp
	if sp.specKey != "" {
		s.spilledBySpec[sp.specKey] = sp
	}
	s.coldBytes += bytes
	s.spills++
	s.enforceSpillCap()
}

// writeSpill serializes sg's graph under the spill dir. Called with mu
// held: a spill write stalls the store, which is the price of never
// dropping a graph the disk can still hold. The write targets a temp name
// and renames into place so a crash never leaves a half image at a
// resolvable path.
func (s *GraphStore) writeSpill(sg *storedGraph) (string, int64, error) {
	final := filepath.Join(s.spillDir, sg.id+".dcsr")
	f, err := os.CreateTemp(s.spillDir, sg.id+".tmp-*")
	if err != nil {
		return "", 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	n, err := sg.g.WriteDCSR(bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), final)
	}
	if err != nil {
		os.Remove(f.Name())
		return "", 0, err
	}
	return final, n, nil
}

// enforceSpillCap deletes cold images oldest-first until the disk budget
// holds. Images backing resident mmap'd graphs are not deletable; if they
// alone exceed the budget the store carries the overage until they cool.
func (s *GraphStore) enforceSpillCap() {
	if s.spillCap <= 0 {
		return
	}
	for s.diskUsed > s.spillCap {
		oldest := s.spillLRU.Back()
		if oldest == nil {
			break
		}
		s.dropSpilled(oldest.Value.(*spilledGraph))
		s.spillDrops++
	}
}

// dropSpilled forgets a cold image entirely, deleting its file.
func (s *GraphStore) dropSpilled(sp *spilledGraph) {
	s.spillLRU.Remove(sp.el)
	delete(s.spilled, sp.id)
	if sp.specKey != "" {
		delete(s.spilledBySpec, sp.specKey)
	}
	s.coldBytes -= sp.bytes
	s.diskUsed -= sp.bytes
	os.Remove(sp.file)
}

// forget removes a resident entry and deletes its image: the graph is
// gone from the store completely (ID-collision replacement only).
func (s *GraphStore) forget(el *list.Element) {
	sg := s.detach(el)
	if sg.file != "" {
		s.diskUsed -= sg.fileBytes
		os.Remove(sg.file)
	}
}

// readmit pages a spilled image back in under its original ID. On any
// open failure the image is dropped and the lookup proceeds as a miss.
// Called with mu held.
func (s *GraphStore) readmit(sp *spilledGraph) (*storedGraph, bool) {
	mg, err := graph.OpenDCSR(sp.file)
	if err != nil {
		s.dropSpilled(sp)
		s.spillDrops++
		return nil, false
	}
	s.spillLRU.Remove(sp.el)
	delete(s.spilled, sp.id)
	if sp.specKey != "" {
		delete(s.spilledBySpec, sp.specKey)
	}
	s.coldBytes -= sp.bytes
	sg := &storedGraph{
		id:        sp.id,
		g:         mg.Graph,
		specKey:   sp.specKey,
		mapped:    mg.Mapped(),
		file:      sp.file,
		fileBytes: sp.bytes,
	}
	// admit cannot fail here: a mapped entry is never rejected, and the
	// heap fallback was loaded from an image we wrote, so it fit before.
	if err := s.admit(sg); err != nil {
		s.diskUsed -= sp.bytes
		os.Remove(sp.file)
		return nil, false
	}
	if sg.mapped {
		s.mappedBytes += sp.bytes
	}
	s.readmits++
	return sg, true
}

// Resolve returns the graph for id, bumping its recency, along with how it
// materialized: "ram" for a heap-resident hit, "mmap" for a graph whose
// arrays are (or were re-admitted as) a page-mapped .dcsr image.
func (s *GraphStore) Resolve(id string) (*graph.Graph, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[id]; ok {
		s.hits++
		s.touch(el)
		sg := el.Value.(*storedGraph)
		return sg.g, residentSource(sg), true
	}
	if sp, ok := s.spilled[id]; ok {
		if sg, ok := s.readmit(sp); ok {
			s.hits++
			return sg.g, "mmap", true
		}
	}
	s.misses++
	return nil, "", false
}

// Get returns the graph for id, bumping its recency.
func (s *GraphStore) Get(id string) (*graph.Graph, bool) {
	g, _, ok := s.Resolve(id)
	return g, ok
}

// Len returns the number of resident graphs.
func (s *GraphStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Used returns the resident heap weight and the capacity.
func (s *GraphStore) Used() (used, capacity int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used, s.cap
}

// Evicted returns how many graphs the LRU bound has pushed out of RAM
// (spilled or forgotten).
func (s *GraphStore) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// HitsMisses returns the lookup counters: hits are Get/Resolve or AddSpec
// calls answered by a resident or spilled graph without generating; misses
// are failed lookups and AddSpec calls that had to generate (including
// generate work thrown away to a racing identical upload).
func (s *GraphStore) HitsMisses() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// SpillStats is a snapshot of the out-of-core side of the store.
type SpillStats struct {
	Enabled       bool
	SpilledGraphs int   // cold images on disk
	SpilledBytes  int64 // bytes of cold images
	DiskBytes     int64 // all owned .dcsr bytes (cold + resident mapped)
	MappedBytes   int64 // bytes backing resident mmap'd graphs
	Spills        int64 // evictions that kept an image
	Readmits      int64 // spilled graphs paged back in
	Drops         int64 // images deleted (disk budget or open failure)
}

// Spill returns the current spill snapshot.
func (s *GraphStore) Spill() SpillStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpillStats{
		Enabled:       s.spillDir != "",
		SpilledGraphs: len(s.spilled),
		SpilledBytes:  s.coldBytes,
		DiskBytes:     s.diskUsed,
		MappedBytes:   s.mappedBytes,
		Spills:        s.spills,
		Readmits:      s.readmits,
		Drops:         s.spillDrops,
	}
}

// SpillDir returns the spill directory ("" when spilling is disabled).
func (s *GraphStore) SpillDir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spillDir
}
