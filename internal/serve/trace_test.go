package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"distcolor/internal/obs"
)

// traceSpanJSON mirrors the native span wire form served by
// GET /v1/traces/{id} and /debug/flight.
type traceSpanJSON struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id"`
	Name     string `json:"name"`
	DurNs    int64  `json:"dur_ns"`
}

type spansBody struct {
	Spans []traceSpanJSON `json:"spans"`
}

// getTraceSpans fetches one trace's spans, retrying briefly: the root span
// is published to the ring just after the response is written, so an
// immediate read can race it.
func getTraceSpans(t *testing.T, url, traceID string) []traceSpanJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, raw := doJSON(t, http.MethodGet, url+"/v1/traces/"+traceID, nil)
		if code == http.StatusOK {
			body := decode[spansBody](t, raw)
			for _, s := range body.Spans {
				if strings.HasPrefix(s.Name, "HTTP ") {
					return body.Spans
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s: no root span within deadline (last status %d: %s)", traceID, code, raw)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEndTraceSpans is the acceptance-criteria trace: one
// POST /v1/jobs?wait=true request must leave ≥5 nested spans — the HTTP
// root, store.resolve, queue.admit, queue.wait, job.run, and at least one
// engine phase — correctly parented into one tree under one trace ID.
func TestEndToEndTraceSpans(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, TraceSeed: 11})
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=true",
		map[string]any{"gen": "apollonian:300", "algo": "planar6"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, raw)
	}
	jj := decode[jobJSON](t, raw)
	if jj.Status != StatusDone {
		t.Fatalf("job ended %q: %s", jj.Status, jj.Error)
	}
	if jj.TraceID == "" {
		t.Fatal("job JSON carries no trace_id")
	}

	spans := getTraceSpans(t, ts.URL, jj.TraceID)
	if len(spans) < 5 {
		t.Fatalf("trace has %d spans, want ≥5: %+v", len(spans), spans)
	}
	byName := map[string]traceSpanJSON{}
	var engine int
	for _, s := range spans {
		if s.TraceID != jj.TraceID {
			t.Errorf("span %s carries trace %s, want %s", s.Name, s.TraceID, jj.TraceID)
		}
		if strings.HasPrefix(s.Name, "engine.") {
			engine++
			continue
		}
		byName[s.Name] = s
	}
	root, ok := byName["HTTP POST /v1/jobs"]
	if !ok {
		t.Fatalf("no HTTP root span in %+v", spans)
	}
	if root.ParentID != "" {
		t.Errorf("root span has parent %s", root.ParentID)
	}
	for _, name := range []string{"store.resolve", "queue.admit", "queue.wait"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("missing span %q in %+v", name, spans)
		}
		if s.ParentID != root.SpanID {
			t.Errorf("span %q parented under %s, want root %s", name, s.ParentID, root.SpanID)
		}
	}
	run, ok := byName["job.run"]
	if !ok {
		t.Fatalf("missing job.run span in %+v", spans)
	}
	if run.ParentID != root.SpanID {
		t.Errorf("job.run parented under %s, want root %s", run.ParentID, root.SpanID)
	}
	if engine == 0 {
		t.Error("no engine.<phase> spans recorded")
	}
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "engine.") && s.ParentID != run.SpanID {
			t.Errorf("engine span %q parented under %s, want job.run %s", s.Name, s.ParentID, run.SpanID)
		}
	}

	// The trace report carries the same trace ID.
	code, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+jj.ID+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("trace report: status %d: %s", code, raw)
	}
	var rep struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil || rep.TraceID != jj.TraceID {
		t.Errorf("TraceReport.trace_id = %q (err %v), want %q", rep.TraceID, err, jj.TraceID)
	}

	// Chrome export of the same trace must be Perfetto-loadable JSON with
	// one complete event per span.
	code, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/traces/"+jj.TraceID+"?format=chrome", nil)
	if code != http.StatusOK {
		t.Fatalf("chrome export: status %d: %s", code, raw)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", chrome.DisplayTimeUnit)
	}
	var complete int
	for _, e := range chrome.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete < len(spans) {
		t.Errorf("chrome export has %d complete events for %d spans", complete, len(spans))
	}
}

// TestTraceparentPropagation: an inbound traceparent is continued — same
// trace ID end to end, inbound span as root's parent, sampled flag
// honored — and the response invects the server's own span context.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	const inboundTrace = "0af7651916cd43dd8448eb211c80319c"
	const inbound = "00-" + inboundTrace + "-b7ad6b7169203331-01"

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	out := resp.Header.Get("Traceparent")
	sc, err := obs.ParseTraceparent(out)
	if err != nil {
		t.Fatalf("response traceparent %q does not parse: %v", out, err)
	}
	if got := sc.TraceID.String(); got != inboundTrace {
		t.Errorf("outbound trace ID %s, want continued %s", got, inboundTrace)
	}
	if !sc.Sampled() {
		t.Error("inbound sampled flag was dropped")
	}
	if sc.SpanID.String() == "b7ad6b7169203331" {
		t.Error("outbound parent-id must be the server's own span, not the inbound one")
	}
	if got := sc.Traceparent(); got != out {
		t.Errorf("header %q does not round-trip byte-for-byte (re-render %q)", out, got)
	}

	// Without an inbound header the server mints a fresh valid trace.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if _, err := obs.ParseTraceparent(resp2.Header.Get("Traceparent")); err != nil {
		t.Errorf("fresh response traceparent invalid: %v", err)
	}
}

// TestRequestIDsGloballyUnique: request IDs must be 16-hex random draws
// (not a restart-colliding sequence), distinct across requests and across
// two servers simulating a restart/replica pair.
func TestRequestIDsGloballyUnique(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	_, tsA := newTestServer(t, Options{Workers: 1, Logger: logger})
	_, tsB := newTestServer(t, Options{Workers: 1, Logger: logger})
	for i := 0; i < 5; i++ {
		for _, u := range []string{tsA.URL, tsB.URL} {
			code, raw := doJSON(t, http.MethodGet, u+"/healthz", nil)
			if code != http.StatusOK {
				t.Fatalf("healthz: %d %s", code, raw)
			}
		}
	}
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Req string `json:"req"`
		}
		if err := json.Unmarshal(line, &rec); err != nil || rec.Req == "" {
			continue
		}
		if !hexID.MatchString(rec.Req) {
			t.Fatalf("request ID %q is not 16 lowercase hex chars", rec.Req)
		}
		if seen[rec.Req] {
			t.Fatalf("request ID %q repeated", rec.Req)
		}
		seen[rec.Req] = true
	}
	if len(seen) != 10 {
		t.Fatalf("saw %d distinct request IDs, want 10", len(seen))
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestQueueWaitAndExemplars: running a job must populate the
// distcolor_job_queue_wait_seconds histogram, and the OpenMetrics
// rendering must attach trace-ID exemplars to latency buckets while the
// default 0.0.4 exposition stays exemplar-free.
func TestQueueWaitAndExemplars(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=true",
		map[string]any{"gen": "apollonian:200", "algo": "planar6"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	jj := decode[jobJSON](t, raw)
	if jj.Status != StatusDone {
		t.Fatalf("job ended %q: %s", jj.Status, jj.Error)
	}

	// Plain scrape: 0.0.4, no exemplar syntax, queue-wait family present.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "version=0.0.4") {
		t.Errorf("plain scrape content type = %q", resp.Header.Get("Content-Type"))
	}
	if bytes.Contains(plain, []byte("# {")) || bytes.Contains(plain, []byte("# EOF")) {
		t.Error("0.0.4 exposition must not contain OpenMetrics syntax")
	}
	if !bytes.Contains(plain, []byte("distcolor_job_queue_wait_seconds_count 1")) {
		t.Errorf("queue-wait histogram did not record the job:\n%s", plain)
	}

	// Negotiated scrape: OpenMetrics with exemplars and the EOF trailer.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "application/openmetrics-text") {
		t.Errorf("negotiated scrape content type = %q", resp.Header.Get("Content-Type"))
	}
	if !bytes.HasSuffix(om, []byte("# EOF\n")) {
		t.Error("OpenMetrics exposition must end with # EOF")
	}
	want := fmt.Sprintf(`# {trace_id="%s"}`, jj.TraceID)
	if !bytes.Contains(om, []byte(want)) {
		t.Errorf("OpenMetrics exposition carries no exemplar %s:\n%s", want, om)
	}

	// /v1/stats surfaces the latency sample's trace.
	code, raw = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, raw)
	}
	var stats struct {
		Jobs Snapshot `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.LatencySampleTrace != jj.TraceID {
		t.Errorf("stats latency_sample_trace = %q, want %q", stats.Jobs.LatencySampleTrace, jj.TraceID)
	}
}

// TestFlightRecorder: /debug/flight serves the recent-span ring in both
// formats, stays populated even with sampling off (always-on recorder),
// and FlightDump mirrors it for the SIGQUIT path.
func TestFlightRecorder(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, TraceSample: -1})
	for i := 0; i < 3; i++ {
		doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	}
	deadline := time.Now().Add(5 * time.Second)
	var body spansBody
	for {
		code, raw := doJSON(t, http.MethodGet, ts.URL+"/debug/flight", nil)
		if code != http.StatusOK {
			t.Fatalf("flight: %d %s", code, raw)
		}
		body = decode[spansBody](t, raw)
		if len(body.Spans) >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(body.Spans) < 3 {
		t.Fatalf("flight ring has %d spans after 3 unsampled requests, want ≥3", len(body.Spans))
	}
	for _, sp := range body.Spans {
		if !strings.HasPrefix(sp.Name, "HTTP ") {
			t.Errorf("unsampled trace leaked a non-root span %q into the ring", sp.Name)
		}
	}

	var dump bytes.Buffer
	if err := s.FlightDump(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), `"HTTP GET /healthz"`) {
		t.Errorf("FlightDump missing root spans:\n%s", dump.String())
	}

	code, raw := doJSON(t, http.MethodGet, ts.URL+"/debug/flight?format=chrome", nil)
	if code != http.StatusOK || !bytes.Contains(raw, []byte("traceEvents")) {
		t.Errorf("chrome flight export: %d %s", code, raw)
	}
}

// TestTraceNotFound covers the /v1/traces error paths.
func TestTraceNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/traces/zzz", nil); code != http.StatusBadRequest {
		t.Errorf("malformed trace ID: status %d, want 400", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/traces/0af7651916cd43dd8448eb211c80319c", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace ID: status %d, want 404", code)
	}
}

// TestConcurrentTracingAndScrape races job traffic against metric scrapes
// and flight reads — the span ring and exemplar stores are lock-free, and
// this (under -race in CI) is the test that holds them to it.
func TestConcurrentTracingAndScrape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, TraceRing: 64})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/metrics", "/debug/flight"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
				req.Header.Set("Accept", "application/openmetrics-text")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	var jobs sync.WaitGroup
	for w := 0; w < 4; w++ {
		jobs.Add(1)
		go func(w int) {
			defer jobs.Done()
			for i := 0; i < 5; i++ {
				code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=true",
					map[string]any{"gen": "path:40", "algo": "planar6", "seed": uint64(w*10 + i)})
				if code != http.StatusAccepted {
					t.Errorf("submit: %d %s", code, raw)
					return
				}
			}
		}(w)
	}
	jobs.Wait()
	close(stop)
	wg.Wait()
}
