package distcolor

import (
	"context"
	"math/rand/v2"

	"distcolor/internal/graph"
	"distcolor/internal/local"
)

// This file is the whole of the "luby" algorithm — a Luby-style randomized
// (Δ+1)-coloring baseline (cf. Luby, SIAM J. Comput. 1986, and the
// randomized-competitor discussion in PAPERS.md) — and doubles as the
// registry's proof of concept: registering one Algorithm descriptor with a
// run func is all it takes to surface a new algorithm in the public API,
// the CLI (-algo luby, -smoke) and the HTTP server, with validation,
// coalescing keys, cancellation and progress inherited for free.

// lubyProgram is one node of the randomized (Δ+1)-coloring: each round,
// with probability ½ (Luby's wake-up trick), an uncolored node proposes a
// color drawn uniformly from {0..Δ} minus its neighbors' finalized colors;
// it keeps the proposal if no neighbor proposed the same color this round,
// announces it, and halts. With (Δ+1)-size palettes a free color always
// exists, and every uncolored node finalizes with constant probability per
// round, so the run completes in O(log n) rounds with high probability.
type lubyProgram struct {
	// palette holds the colors of {0..Δ} not yet taken by finalized
	// neighbors. The slice version kept its colors in ascending order and
	// drew palette[rng.IntN(len)], i.e. the k-th remaining color in
	// ascending order — which is exactly Bitset.SelectSet(k), so the bitset
	// reproduces the draw sequence bit for bit while removal becomes one
	// word op instead of a slice scan+copy.
	palette   *graph.Bitset
	remaining int
	rng       *rand.Rand
	color     int
	cand      int
}

type lubyMsg struct {
	candidate int
	final     bool
}

func (p *lubyProgram) Init(info local.NodeInfo) {
	p.color = Uncolored
	p.cand = Uncolored
}

func (p *lubyProgram) Step(round int, inbox []local.Inbound) ([]local.Outbound, bool) {
	conflict := false
	for _, in := range inbox {
		m := in.Msg.(lubyMsg)
		if m.final {
			if m.candidate >= 0 && m.candidate < p.palette.Len() && p.palette.Test(m.candidate) {
				p.palette.Clear(m.candidate)
				p.remaining--
			}
			if p.cand == m.candidate {
				conflict = true
			}
			continue
		}
		if m.candidate != Uncolored && m.candidate == p.cand {
			conflict = true
		}
	}
	if p.color != Uncolored {
		return nil, true // final color was announced last round
	}
	if p.cand != Uncolored && !conflict {
		p.color = p.cand
		return []local.Outbound{{Port: local.Broadcast, Msg: lubyMsg{candidate: p.color, final: true}}}, false
	}
	p.cand = Uncolored
	// Luby wake-up: stay silent this round with probability ½.
	if p.rng.IntN(2) == 0 {
		return nil, false
	}
	p.cand = p.palette.SelectSet(p.rng.IntN(p.remaining))
	return []local.Outbound{{Port: local.Broadcast, Msg: lubyMsg{candidate: p.cand}}}, false
}

func (p *lubyProgram) Output() any { return p.color }

func init() {
	MustRegister(&Algorithm{
		Name:       "luby",
		Doc:        "Luby-style randomized (Δ+1)-coloring with ½-probability wake-ups (baseline)",
		Theorem:    "baseline (Luby 1986)",
		Lists:      ListsNone,
		Smoke:      "regular:60,3",
		RoundBound: lubyStyleBound,
		Run: func(ctx context.Context, g *Graph, rc *RunConfig) (*Coloring, error) {
			rng := rc.RNG()
			nw := local.NewShuffledNetwork(g, rng)
			delta := g.MaxDegree()
			ledger := &local.Ledger{Progress: rc.ledgerProgress(), Trace: rc.ledgerTrace()}
			seed := rng.Uint64()
			outs, err := local.RunSync(ctx, nw, ledger, "luby", rc.MaxRounds(g), func(v int) local.Program {
				palette := graph.NewBitset(delta + 1)
				for i := 0; i <= delta; i++ {
					palette.Set(i)
				}
				return &lubyProgram{
					palette:   palette,
					remaining: delta + 1,
					rng:       rand.New(rand.NewPCG(seed, uint64(nw.ID[v]))),
				}
			})
			if err != nil {
				return nil, err
			}
			colors := make([]int, g.N())
			for v, o := range outs {
				colors[v] = o.(int)
			}
			return coloringFromLedger(colors, ledger), nil
		},
	})
}
