package distcolor_test

import (
	"context"
	"fmt"
	"testing"

	"distcolor"
	"distcolor/internal/serve/runcfg"
)

// The property sweep runs every registered Algorithm across the four
// workload families the paper targets — planar, bounded arboricity, random
// sparse and regular — at three seeds each, and asserts the two properties
// every run must satisfy regardless of algorithm: the result is a proper
// coloring (no monochromatic edge, no uncolored vertex), and when the
// algorithm declares PaletteSize metadata, every color fits the declared
// palette [0, k). Algorithms whose hypotheses exclude a family's base spec
// substitute a hypothesis-compatible member of the same family (a planar
// algorithm gets a random tree as its "random sparse" input, not a GNP
// draw); algorithms registered after this table was written fall back to
// their own Smoke spec so they are still swept.

// sweepSpec is one family cell for one algorithm: the gen spec to run, any
// parameter overrides its hypotheses need on that input, and — when the
// overrides change the declared palette — the palette bound to assert
// instead of PaletteSize under default parameters (0 = use the default).
type sweepSpec struct {
	spec    string
	opts    []distcolor.Option
	palette int
}

var sweepFamilies = []string{"planar", "arboricity", "random-sparse", "regular"}

// baseSpecs are the default family representatives, mirroring the engine
// benchmark families (apollonian = planar triangulation, forests = union of
// 2 random forests, gnp = sparse Erdős–Rényi, regular = random 3-regular).
var baseSpecs = map[string]sweepSpec{
	"planar":        {spec: "apollonian:150"},
	"arboricity":    {spec: "forests:150,2"},
	"random-sparse": {spec: "gnp:200,3"},
	"regular":       {spec: "regular:150,3"},
}

// sweepOverrides lists the hypothesis-compatible substitutions, keyed by
// algorithm then family. Absent entries use baseSpecs.
var sweepOverrides = map[string]map[string]sweepSpec{
	// planar6 needs planar inputs everywhere: trees and cycles stand in
	// for the non-planar families.
	"planar6": {
		"arboricity":    {spec: "tree:150"},
		"random-sparse": {spec: "tree:200"},
		"regular":       {spec: "cycle:150"},
	},
	// trianglefree4 additionally needs triangle-free: the grid replaces
	// the (triangle-rich) Apollonian triangulation.
	"trianglefree4": {
		"planar":        {spec: "grid:10x15"},
		"arboricity":    {spec: "tree:150"},
		"random-sparse": {spec: "tree:200"},
		"regular":       {spec: "cycle:150"},
	},
	// girth6 needs planar girth ≥ 6: the once-subdivided Apollonian
	// triangulation has girth exactly 6, trees and long cycles more.
	"girth6": {
		"planar":        {spec: "subdivided:60"},
		"arboricity":    {spec: "tree:150"},
		"random-sparse": {spec: "tree:200"},
		"regular":       {spec: "cycle:150"},
	},
	// The arboricity algorithms run at a=2 by default; Apollonian
	// triangulations have arboricity 3 (3n-6 edges), and GNP draws have no
	// arboricity guarantee, so the planar cell raises a and the
	// random-sparse cell substitutes a forest union.
	"arboricity": {
		"planar": {spec: "apollonian:150",
			opts: []distcolor.Option{distcolor.WithArboricity(3)}, palette: 6},
		"random-sparse": {spec: "forests:200,2"},
	},
	"be": {
		"planar": {spec: "apollonian:150",
			opts: []distcolor.Option{distcolor.WithArboricity(3)}},
		"random-sparse": {spec: "forests:200,2"},
	},
}

var sweepSeeds = []uint64{1, 17, 42}

// sweepCell resolves the spec for one (algorithm, family) cell. Unknown
// algorithms (registered after this table) sweep their Smoke spec.
func sweepCell(a *distcolor.Algorithm, family string) sweepSpec {
	if over, ok := sweepOverrides[a.Name][family]; ok {
		return over
	}
	if _, known := sweepOverrides[a.Name]; !known {
		switch a.Name {
		case "sparse", "genus", "delta", "nice", "gps7", "randomized", "luby":
			// Base specs satisfy these algorithms' hypotheses in every
			// family (all four are sparse enough for their palettes).
		default:
			return sweepSpec{spec: a.Smoke}
		}
	}
	return baseSpecs[family]
}

// assertProper fails unless colors is a proper coloring of g with every
// vertex colored.
func assertProper(t *testing.T, g *distcolor.Graph, colors []int) {
	t.Helper()
	if len(colors) != g.N() {
		t.Fatalf("got %d colors for %d vertices", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			t.Fatalf("vertex %d uncolored (%d)", v, colors[v])
		}
		for _, w := range g.Neighbors(v) {
			if colors[v] == colors[int(w)] {
				t.Fatalf("monochromatic edge (%d,%d): both color %d", v, w, colors[v])
			}
		}
	}
}

// assertClique fails unless verts is a genuine clique of g of size ≥ 2 —
// the alternative outcome of the Theorem 1.3 family and the Δ-list
// algorithm is a clique certificate, which must be checkable.
func assertClique(t *testing.T, g *distcolor.Graph, verts []int) {
	t.Helper()
	if len(verts) < 2 {
		t.Fatalf("clique certificate with %d vertices", len(verts))
	}
	for i, u := range verts {
		for _, v := range verts[i+1:] {
			if !g.HasEdge(u, v) {
				t.Fatalf("clique certificate not a clique: missing edge (%d,%d)", u, v)
			}
		}
	}
}

func TestProperColoringSweep(t *testing.T) {
	for _, a := range distcolor.Algorithms() {
		for _, family := range sweepFamilies {
			cell := sweepCell(a, family)
			for _, seed := range sweepSeeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", a.Name, family, seed), func(t *testing.T) {
					g, err := runcfg.Generate(cell.spec, 1)
					if err != nil {
						t.Fatalf("generating %q: %v", cell.spec, err)
					}
					opts := append([]distcolor.Option{distcolor.WithSeed(seed)}, cell.opts...)
					col, err := distcolor.Run(context.Background(), g, a.Name, opts...)
					if err != nil {
						t.Fatalf("%s on %q: %v", a.Name, cell.spec, err)
					}
					if col.Clique != nil {
						assertClique(t, g, col.Clique)
						return
					}
					assertProper(t, g, col.Colors)
					k := cell.palette
					if k == 0 {
						if a.PaletteSize == nil {
							return
						}
						params, err := a.ResolveParams(nil)
						if err != nil {
							t.Fatalf("resolving default params: %v", err)
						}
						var ok bool
						if k, ok = a.PaletteSize(g, params); !ok {
							return
						}
					}
					for v, c := range col.Colors {
						if c >= k {
							t.Fatalf("vertex %d color %d outside declared palette [0,%d)", v, c, k)
						}
					}
				})
			}
		}
	}
}
