package distcolor

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"

	"distcolor/internal/local"
)

// Param describes one numeric parameter of an Algorithm: its wire name, its
// default, and its admissible range. Parameter resolution and validation are
// fully metadata-driven, so the CLI, the server and the public API all
// enforce identical rules.
type Param struct {
	// Name is the wire name ("d", "a", "eps", …), also accepted by
	// WithParam.
	Name string
	// Doc is a one-line description.
	Doc string
	// Default is used when the caller does not set the parameter.
	Default float64
	// Min is the smallest admissible value (exclusive when StrictMin).
	Min float64
	// StrictMin makes Min exclusive (e.g. ε > 0).
	StrictMin bool
	// Integer requires an integral value.
	Integer bool
}

// ListsSupport classifies how an algorithm consumes color lists.
type ListsSupport int

const (
	// ListsNone: the algorithm fixes its own palette; WithLists is
	// rejected (gps7, be, randomized, luby).
	ListsNone ListsSupport = iota
	// ListsOwn: caller lists are accepted but must satisfy an
	// algorithm-specific shape; when absent the algorithm draws its own
	// (nice). Random fixed-size wire lists are not supported.
	ListsOwn
	// ListsAny: any caller lists of size ≥ PaletteSize work (sparse,
	// planar6, trianglefree4, girth6, arboricity, genus, delta).
	ListsAny
)

// ParamValues is a resolved parameter assignment (defaults applied,
// validated against the schema).
type ParamValues map[string]float64

// Int returns the named parameter as an int.
func (p ParamValues) Int(name string) int { return int(p[name]) }

// Float returns the named parameter.
func (p ParamValues) Float(name string) float64 { return p[name] }

// RunFunc executes an algorithm on a graph under a resolved RunConfig. The
// returned Coloring must echo the lists it actually used in Coloring.Lists
// (nil when it used no lists); Run verifies the coloring against them.
type RunFunc func(ctx context.Context, g *Graph, rc *RunConfig) (*Coloring, error)

// Algorithm is a self-describing coloring algorithm: the single source of
// truth the public API, the CLI and the serving layer all dispatch through.
// Built-ins register themselves at init; external packages may Register
// their own.
type Algorithm struct {
	// Name is the wire name ("sparse", "planar6", …), unique in the
	// registry.
	Name string
	// Doc is a one-line description.
	Doc string
	// Theorem names the paper result the algorithm implements ("Theorem
	// 1.3", "baseline", …).
	Theorem string
	// Params is the parameter schema; order is the canonical (wire-key)
	// order.
	Params []Param
	// Lists declares list support (see ListsSupport).
	Lists ListsSupport
	// PaletteSize returns the per-vertex list size k the algorithm
	// requires, when known. g may be nil for a static (graph-free) query;
	// algorithms whose k depends on the graph (delta) answer ok=false
	// then.
	PaletteSize func(g *Graph, p ParamValues) (k int, ok bool)
	// Smoke is a tiny generator spec (internal/gen.ParseSpec syntax) whose
	// output satisfies the algorithm's hypotheses under default
	// parameters; `distcolor -smoke` runs every registered algorithm on
	// its Smoke graph.
	Smoke string
	// RoundBound, when non-nil, returns a safe upper bound on the LOCAL
	// round cost of a run on a graph with n vertices and maximum degree
	// maxDeg, under default parameters — the registry's cost-prediction
	// metadata, surfaced by GET /v1/algorithms and `distcolor -list-algos`.
	// Algorithms that drive the message-passing engine directly (luby,
	// randomized) also enforce it as their maxRounds guard via
	// RunConfig.MaxRounds, so a run that blows past its declared bound
	// fails loudly instead of spinning; for the centrally simulated core
	// algorithms, which carry their own internal guards, the bound is
	// advisory.
	RoundBound func(n, maxDeg int) int
	// Run executes the algorithm.
	Run RunFunc
}

// RoundBoundRefN and RoundBoundRefMaxDeg are the canonical (n, maxDeg)
// point at which RoundBound metadata is quoted when no workload is named —
// the GET /v1/algorithms default and the `distcolor -list-algos` column.
// RoundBoundMaxDeg is the largest maxDeg a bound is ever evaluated at:
// callers clamp to it so quadratic bound formulas cannot overflow int64
// (16·RoundBoundMaxDeg² fits), and the built-in formulas clamp again
// themselves.
const (
	RoundBoundRefN      = 1_000_000
	RoundBoundRefMaxDeg = 100
	RoundBoundMaxDeg    = 500_000_000
)

// defaultMaxRounds is the engine guard for algorithms that declare no
// RoundBound: generous enough for any polylog-round run at realistic n,
// small enough that a non-terminating program still fails.
const defaultMaxRounds = 1 << 20

// MaxRounds returns the engine's maxRounds guard for a run on g: the
// algorithm's RoundBound metadata when declared, else defaultMaxRounds.
func (rc *RunConfig) MaxRounds(g *Graph) int {
	if rc.algo != nil && rc.algo.RoundBound != nil {
		if b := rc.algo.RoundBound(g.N(), g.MaxDegree()); b > 0 {
			return b
		}
	}
	return defaultMaxRounds
}

// RunConfig is the resolved form of a Run invocation's options, handed to
// an Algorithm's Run func.
type RunConfig struct {
	// Seed shuffles node identifiers and seeds any internal randomness
	// (0 = identity IDs).
	Seed uint64
	// BallC overrides the paper's ball-radius constant (0 = default);
	// ignored by algorithms without ball phases.
	BallC float64
	// Lists is the caller-supplied list assignment (nil = algorithm
	// default).
	Lists [][]int
	// Params is the fully resolved parameter assignment.
	Params ParamValues

	algo     *Algorithm
	explicit map[string]float64
	progress func(PhaseEvent)
	trace    *local.RoundTrace
	rng      *rand.Rand
}

// RNG returns the run's deterministic random source, derived from Seed.
// Algorithms that draw their own lists or per-node seeds must take all
// randomness from here so results stay a pure function of (graph, config).
func (rc *RunConfig) RNG() *rand.Rand {
	if rc.rng == nil {
		rc.rng = rand.New(rand.NewPCG(rc.Seed, listStream))
	}
	return rc.rng
}

// EmitProgress reports a phase-progress event to the run's observer, if
// any. Algorithms built on internal engines get this for free via the
// ledger; external RunFuncs call it directly.
func (rc *RunConfig) EmitProgress(phase string, delta, total int) {
	if rc.progress != nil {
		rc.progress(PhaseEvent{Algorithm: rc.algo.Name, Phase: phase, Delta: delta, Rounds: total})
	}
}

// ledgerProgress adapts the run's observer to the round ledger's hook.
func (rc *RunConfig) ledgerProgress() local.ProgressFunc {
	if rc.progress == nil {
		return nil
	}
	return rc.EmitProgress
}

// ledgerTrace returns the run's trace recorder for attaching to ledgers
// (nil when the caller did not ask for a trace — the engines then pay a
// single nil check and record nothing).
func (rc *RunConfig) ledgerTrace() *local.RoundTrace { return rc.trace }

// network binds the graph to the run's ID assignment (shuffled when Seed is
// non-zero — the LOCAL model assigns IDs adversarially).
func (rc *RunConfig) network(g *Graph) *local.Network { return network(g, rc.Seed) }

// ResolveParams validates an explicit parameter assignment against the
// schema and fills defaults for unset parameters. Unknown names and
// out-of-range values are errors.
func (a *Algorithm) ResolveParams(explicit map[string]float64) (ParamValues, error) {
	vals := make(ParamValues, len(a.Params))
	for _, p := range a.Params {
		v, ok := explicit[p.Name]
		if !ok {
			v = p.Default
		}
		if p.Integer && v != math.Trunc(v) {
			return nil, fmt.Errorf("distcolor: algorithm %q: parameter %s must be an integer, got %g", a.Name, p.Name, v)
		}
		if v < p.Min || (p.StrictMin && v == p.Min) {
			rel := "≥"
			if p.StrictMin {
				rel = ">"
			}
			return nil, fmt.Errorf("distcolor: algorithm %q needs %s %s %g, got %g", a.Name, p.Name, rel, p.Min, v)
		}
		vals[p.Name] = v
	}
	for name := range explicit {
		if _, ok := vals[name]; !ok {
			return nil, fmt.Errorf("distcolor: algorithm %q has no parameter %q", a.Name, name)
		}
	}
	return vals, nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Algorithm{}
)

// Register adds an algorithm to the registry. The name must be non-empty
// and unused; Run must be non-nil. Registered algorithms immediately become
// available to Run, the CLI and the serving layer.
func Register(a *Algorithm) error {
	if a == nil || a.Name == "" {
		return fmt.Errorf("distcolor: Register needs a named algorithm")
	}
	if a.Run == nil {
		return fmt.Errorf("distcolor: algorithm %q has no Run func", a.Name)
	}
	seen := map[string]bool{}
	for _, p := range a.Params {
		if p.Name == "" || seen[p.Name] {
			return fmt.Errorf("distcolor: algorithm %q has an unnamed or duplicate parameter", a.Name)
		}
		seen[p.Name] = true
	}
	if a.PaletteSize == nil {
		a.PaletteSize = func(*Graph, ParamValues) (int, bool) { return 0, false }
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[a.Name]; dup {
		return fmt.Errorf("distcolor: algorithm %q already registered", a.Name)
	}
	registry[a.Name] = a
	return nil
}

// MustRegister is Register, panicking on error (init-time registration).
func MustRegister(a *Algorithm) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

// Lookup finds a registered algorithm by wire name.
func Lookup(name string) (*Algorithm, error) {
	regMu.RLock()
	a, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("distcolor: unknown algorithm %q (registered: %s)", name, namesJoined())
	}
	return a, nil
}

// Algorithms returns every registered algorithm, sorted by name.
func Algorithms() []*Algorithm {
	regMu.RLock()
	out := make([]*Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AlgorithmNames returns the registered wire names, sorted.
func AlgorithmNames() []string {
	algos := Algorithms()
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}

func namesJoined() string { return strings.Join(AlgorithmNames(), "|") }
