package distcolor

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"math/rand/v2"

	"distcolor/internal/gen"
)

// subdividedCube returns the 1-subdivision of the cube graph Q₃: planar,
// bipartite, triangle-free, girth 8, Δ = 3, mad < 3, arboricity ≤ 2 — one
// graph satisfying the hypotheses of every registered algorithm under its
// default parameters, which is what makes a uniform conformance sweep
// possible.
func subdividedCube(t *testing.T) *Graph {
	t.Helper()
	cube := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	}
	b := NewBuilder(8 + len(cube))
	for i, e := range cube {
		mid := 8 + i
		if err := b.AddEdge(e[0], mid); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(mid, e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Graph()
}

// TestRegistryConformance runs every registered algorithm, with default
// parameters, on a graph satisfying all their hypotheses, and checks the
// returned coloring against the lists the run reports using plus the
// palette bound the registry metadata promises.
func TestRegistryConformance(t *testing.T) {
	g := subdividedCube(t)
	for _, a := range Algorithms() {
		for _, seed := range []uint64{0, 7} {
			col, err := Run(context.Background(), g, a.Name, WithSeed(seed))
			if err != nil {
				t.Errorf("%s (seed %d): %v", a.Name, seed, err)
				continue
			}
			if col.Algorithm != a.Name {
				t.Errorf("%s: coloring credits %q", a.Name, col.Algorithm)
			}
			if col.Clique != nil {
				t.Errorf("%s: unexpected clique on a K₄-free graph", a.Name)
				continue
			}
			if err := Verify(g, col.Colors, col.Lists); err != nil {
				t.Errorf("%s (seed %d): invalid coloring: %v", a.Name, seed, err)
			}
			if k, known := a.PaletteSize(g, mustParams(t, a)); known && NumColors(col.Colors) > k {
				t.Errorf("%s: used %d colors, metadata promises ≤ %d", a.Name, NumColors(col.Colors), k)
			}
			if col.Rounds <= 0 {
				t.Errorf("%s: no rounds charged", a.Name)
			}
		}
	}
}

func mustParams(t *testing.T, a *Algorithm) ParamValues {
	t.Helper()
	vals, err := a.ResolveParams(nil)
	if err != nil {
		t.Fatalf("%s: default params invalid: %v", a.Name, err)
	}
	return vals
}

func TestRunOptionValidation(t *testing.T) {
	g := subdividedCube(t)
	ctx := context.Background()
	if _, err := Run(ctx, g, "nosuch"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("unknown algorithm: %v", err)
	}
	if _, err := Run(ctx, g, "sparse", WithD(2)); err == nil {
		t.Error("sparse d=2 accepted")
	}
	if _, err := Run(ctx, g, "planar6", WithD(6)); err == nil {
		t.Error("planar6 accepted a d parameter it does not have")
	}
	if _, err := Run(ctx, g, "be", WithEps(0)); err == nil {
		t.Error("be ε=0 accepted")
	}
	if _, err := Run(ctx, g, "gps7", WithLists(UniformLists(g.N(), 7))); err == nil {
		t.Error("gps7 accepted caller lists")
	}
	// Pre-cancelled contexts never start the run.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Run(cancelled, g, "planar6"); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(&Algorithm{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(&Algorithm{Name: "x-no-run"}); err == nil {
		t.Error("nil Run accepted")
	}
	if err := Register(&Algorithm{Name: "planar6", Run: func(context.Context, *Graph, *RunConfig) (*Coloring, error) { return nil, nil }}); err == nil {
		t.Error("duplicate name accepted")
	}
}

// TestRunCancellationPrompt cancels a heavy run mid-flight and requires a
// prompt ctx.Err() return with no leaked worker goroutines.
func TestRunCancellationPrompt(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := gen.Apollonian(120000, rng)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := Run(ctx, g, "planar6", WithSeed(3))
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancelAt := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled run never returned")
	}
	if waited := time.Since(cancelAt); waited > 30*time.Second {
		t.Fatalf("cancellation took %s", waited)
	}
	// The RunSync worker pool must be torn down on the cancel path.
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestRunDeadline exercises the context.DeadlineExceeded path.
func TestRunDeadline(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	g := gen.Apollonian(120000, rng)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := Run(ctx, g, "planar6"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run returned %v", err)
	}
}

// TestLubyBaseline checks the satellite registration end to end: proper
// coloring, ≤ Δ+1 colors, determinism in the seed.
func TestLubyBaseline(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g := gen.Apollonian(400, rng)
	col1, err := Run(context.Background(), g, "luby", WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, col1.Colors, nil); err != nil {
		t.Fatal(err)
	}
	if k, max := NumColors(col1.Colors), g.MaxDegree()+1; k > max {
		t.Fatalf("luby used %d colors > Δ+1 = %d", k, max)
	}
	col2, err := Run(context.Background(), g, "luby", WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for v := range col1.Colors {
		if col1.Colors[v] != col2.Colors[v] {
			t.Fatalf("luby not deterministic in seed at vertex %d", v)
		}
	}
}

// TestProgressEvents requires live phase events during a run, consistent
// with the final round total.
func TestProgressEvents(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	g := gen.Apollonian(300, rng)
	var events []PhaseEvent
	col, err := Run(context.Background(), g, "planar6",
		WithProgress(func(e PhaseEvent) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	sum := 0
	for _, e := range events {
		if e.Algorithm != "planar6" {
			t.Fatalf("event credits %q", e.Algorithm)
		}
		if e.Delta <= 0 {
			t.Fatalf("non-positive delta event: %+v", e)
		}
		sum += e.Delta
	}
	if sum != col.Rounds {
		t.Fatalf("progress deltas sum to %d, run charged %d", sum, col.Rounds)
	}
	if last := events[len(events)-1]; last.Rounds != col.Rounds {
		t.Fatalf("last event total %d ≠ final rounds %d", last.Rounds, col.Rounds)
	}
}
