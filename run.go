package distcolor

import (
	"context"
	"fmt"

	"distcolor/internal/local"
	"distcolor/internal/seqcolor"
)

// PhaseEvent is one live progress report from a running algorithm: the
// ledger just charged Delta LOCAL rounds to Phase, bringing the emitting
// engine's total to Rounds. Events are delivered synchronously on the
// goroutine executing the run; observers must be fast and non-blocking.
type PhaseEvent struct {
	// Algorithm is the wire name of the running algorithm.
	Algorithm string
	// Phase is the charged phase name ("peel/happy", "extend/ruling", …).
	Phase string
	// Delta is the number of rounds this event charged.
	Delta int
	// Rounds is the emitting engine's cumulative round total so far.
	Rounds int
}

// Option configures a Run invocation.
type Option func(*RunConfig)

// WithSeed shuffles the node identifiers and seeds any internal randomness
// (0 = identity ID assignment). The LOCAL model assigns IDs adversarially;
// shuffling exercises that.
func WithSeed(seed uint64) Option { return func(rc *RunConfig) { rc.Seed = seed } }

// WithLists supplies a per-vertex color-list assignment. Nil is a no-op
// (algorithm default lists). Algorithms with ListsNone support reject it.
func WithLists(lists [][]int) Option {
	return func(rc *RunConfig) {
		if lists != nil {
			rc.Lists = lists
		}
	}
}

// WithBallC overrides the paper's ball-radius constant (experts only; see
// core.DefaultBallC). Ignored by algorithms without ball phases.
func WithBallC(c float64) Option { return func(rc *RunConfig) { rc.BallC = c } }

// WithProgress registers a live phase-progress observer. It is called
// synchronously from the run; keep it fast and non-blocking.
func WithProgress(fn func(PhaseEvent)) Option {
	return func(rc *RunConfig) { rc.progress = fn }
}

// RoundTrace records a run's execution profile: per-phase LOCAL round
// totals (always in exact agreement with Coloring.Phases), and — for
// phases driven by the message-passing engine — per-round message counts,
// active-list sizes and per-shard delivery timings. Attach one with
// WithTrace; after the run, Report produces the wire-form TraceReport.
type RoundTrace = local.RoundTrace

// TraceReport is the JSON wire form of a completed run's RoundTrace — the
// same schema served by the serving tier's GET /v1/jobs/{id}/trace and
// written by `distcolor -trace`.
type TraceReport = local.TraceReport

// WithTrace attaches a round-trace recorder to the run. The recorder is
// owned by the run until Run returns: read it from the calling goroutine
// afterwards (or synchronously from a WithProgress observer), then build
// the wire report with trace.Report(algo). Nil is a no-op; runs without a
// trace pay one nil check per engine round.
func WithTrace(t *RoundTrace) Option {
	return func(rc *RunConfig) { rc.trace = t }
}

// WithParam sets a named algorithm parameter (see Algorithm.Params).
// Unknown names and out-of-range values fail at Run time.
func WithParam(name string, value float64) Option {
	return func(rc *RunConfig) {
		if rc.explicit == nil {
			rc.explicit = map[string]float64{}
		}
		rc.explicit[name] = value
	}
}

// WithD sets the sparsity parameter d (algorithm "sparse").
func WithD(d int) Option { return WithParam("d", float64(d)) }

// WithArboricity sets the arboricity parameter a (algorithms "arboricity"
// and "be").
func WithArboricity(a int) Option { return WithParam("a", float64(a)) }

// WithEps sets ε (algorithm "be").
func WithEps(eps float64) Option { return WithParam("eps", eps) }

// WithGenus sets the Euler genus (algorithm "genus").
func WithGenus(genus int) Option { return WithParam("genus", float64(genus)) }

// Run is the context-aware entry point of the package: it resolves algo in
// the Algorithm registry, applies the options against the algorithm's
// parameter schema, executes it on g, verifies the coloring, and returns
// it. Cancel ctx (or let its deadline expire) to stop the run within one
// LOCAL round; the run then returns ctx.Err() without leaking goroutines.
//
// Every result is a pure function of (g, algo, options): runs are
// deterministic and safe to cache or coalesce. The legacy top-level
// wrappers (SparseListColor, Planar6, …) are thin shims over Run.
func Run(ctx context.Context, g *Graph, algo string, opts ...Option) (*Coloring, error) {
	a, err := Lookup(algo)
	if err != nil {
		return nil, err
	}
	rc := &RunConfig{algo: a}
	for _, opt := range opts {
		opt(rc)
	}
	rc.Params, err = a.ResolveParams(rc.explicit)
	if err != nil {
		return nil, err
	}
	if rc.Lists != nil && a.Lists == ListsNone {
		return nil, fmt.Errorf("distcolor: algorithm %q does not take caller-supplied lists", a.Name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rc.trace != nil {
		rc.trace.Begin()
	}
	col, err := a.Run(ctx, g, rc)
	if err != nil {
		return nil, err
	}
	col.Algorithm = a.Name
	if col.Clique == nil {
		if err := seqcolor.Verify(g, col.Colors, col.Lists); err != nil {
			return nil, fmt.Errorf("distcolor: algorithm %q produced an invalid coloring: %w", a.Name, err)
		}
	}
	return col, nil
}
