#!/usr/bin/env python3
"""End-to-end smoke for the binary graph path, over real HTTP.

Usage: convert_smoke.py <workdir>

Expects <workdir>/g.dcsr (a valid .dcsr image, produced by `distcolor
convert`) and <workdir>/distcolor-serve (the server binary). Starts a
spill-enabled server on a loopback port, uploads the image with
Content-Type application/x-dcsr, runs a planar6 job to completion, and
downloads the coloring in the raw little-endian int32 wire format,
asserting its length matches the graph.

Stdlib only (urllib): no pip dependencies.
"""
import json
import os
import struct
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

ADDR = "127.0.0.1:18462"
BASE = f"http://{ADDR}"


def request(method, path, data=None, headers=None):
    req = urllib.request.Request(BASE + path, data=data, method=method,
                                 headers=headers or {})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


def wait_ready(proc, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server exited early with code {proc.returncode}")
        try:
            status, _, _ = request("GET", "/healthz")
            if status == 200:
                return
        except (urllib.error.URLError, ConnectionError):
            pass
        time.sleep(0.2)
    raise SystemExit("server never became healthy")


def main():
    workdir = sys.argv[1]
    dcsr = os.path.join(workdir, "g.dcsr")
    image = open(dcsr, "rb").read()
    # Header words 8:16 and 16:24 are n and m (little-endian u64).
    n, m = struct.unpack_from("<QQ", image, 8)

    spill = tempfile.mkdtemp(prefix="convert-smoke-spill-")
    proc = subprocess.Popen(
        [os.path.join(workdir, "distcolor-serve"), "-addr", ADDR,
         "-spill-dir", spill, "-log-level", "warn"])
    try:
        wait_ready(proc)

        status, _, body = request(
            "POST", "/v1/graphs", data=image,
            headers={"Content-Type": "application/x-dcsr"})
        graph = json.loads(body)
        assert status == 201, f"upload: {status} {body!r}"
        assert graph["n"] == n and graph["m"] == m, f"echoed {graph} for n={n} m={m}"
        assert graph.get("mapped"), f"upload not page-mapped: {graph}"

        job_req = json.dumps({"graph": graph["id"], "algo": "planar6",
                              "seed": 7}).encode()
        status, _, body = request(
            "POST", "/v1/jobs?wait=true&timeout=60s", data=job_req,
            headers={"Content-Type": "application/json"})
        job = json.loads(body)
        assert status == 202, f"submit: {status} {body!r}"
        assert job["status"] == "done" and job.get("verified"), f"job: {job}"

        status, headers, body = request(
            "GET", f"/v1/jobs/{job['id']}/colors",
            headers={"Accept": "application/octet-stream"})
        assert status == 200, f"colors: {status}"
        assert headers.get("Content-Type") == "application/octet-stream", headers
        assert len(body) == 4 * n, f"{len(body)} color bytes for n={n}"
        assert int(headers["X-Distcolor-Colors-Total"]) == n, headers
        colors = struct.unpack(f"<{n}i", body)
        used = len(set(colors))
        assert 0 < used <= 6, f"planar6 used {used} colors"
        print(f"convert smoke OK: n={n} m={m}, {used} colors, "
              f"{len(body)} binary bytes")
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    main()
