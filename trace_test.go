package distcolor_test

import (
	"context"
	"encoding/json"
	"testing"

	"distcolor"
	"distcolor/internal/serve/runcfg"
)

// TestTraceMatchesColoring is the trace recorder's core contract: for every
// registered algorithm, the report built from a WithTrace run agrees
// exactly with the Coloring the run returned — same total rounds, same
// message count, and a per-phase breakdown identical to Coloring.Phases
// (which is Ledger.ByPhase) in both content and order. Sample and timing
// data ride along; the round accounting is the part the paper's claims
// rest on, so it must never drift.
func TestTraceMatchesColoring(t *testing.T) {
	for _, a := range distcolor.Algorithms() {
		if a.Smoke == "" {
			continue
		}
		t.Run(a.Name, func(t *testing.T) {
			g, err := runcfg.Generate(a.Smoke, 1)
			if err != nil {
				t.Fatalf("generating %q: %v", a.Smoke, err)
			}
			trace := &distcolor.RoundTrace{}
			col, err := distcolor.Run(context.Background(), g, a.Name,
				distcolor.WithSeed(3), distcolor.WithTrace(trace))
			if err != nil {
				t.Fatal(err)
			}
			rep := trace.Report(a.Name)
			if rep.Algorithm != a.Name {
				t.Errorf("report algorithm = %q, want %q", rep.Algorithm, a.Name)
			}
			if rep.Rounds != col.Rounds {
				t.Errorf("trace rounds = %d, coloring rounds = %d", rep.Rounds, col.Rounds)
			}
			if rep.Messages != col.Messages {
				t.Errorf("trace messages = %d, coloring messages = %d", rep.Messages, col.Messages)
			}
			if len(rep.Phases) != len(col.Phases) {
				t.Fatalf("trace has %d phases, coloring has %d:\ntrace: %+v\ncoloring: %+v",
					len(rep.Phases), len(col.Phases), rep.Phases, col.Phases)
			}
			var sampleMsgs, phaseMsgs int
			for i, p := range rep.Phases {
				if p.Phase != col.Phases[i].Name || p.Rounds != col.Phases[i].Rounds {
					t.Errorf("phase %d: trace (%s, %d) vs coloring (%s, %d)",
						i, p.Phase, p.Rounds, col.Phases[i].Name, col.Phases[i].Rounds)
				}
				phaseMsgs += p.Messages
				for _, s := range p.Samples {
					sampleMsgs += s.Messages
				}
				if p.SampleStride == 1 && len(p.Samples) != p.EngineRounds {
					t.Errorf("phase %s: stride 1 but %d samples for %d engine rounds",
						p.Phase, len(p.Samples), p.EngineRounds)
				}
			}
			if phaseMsgs != col.Messages {
				t.Errorf("per-phase messages sum to %d, coloring has %d", phaseMsgs, col.Messages)
			}
			// Every smoke graph is small enough that no phase outgrows the
			// sample cap, so the samples are complete and must also sum up.
			if sampleMsgs != col.Messages {
				t.Errorf("sample messages sum to %d, coloring has %d", sampleMsgs, col.Messages)
			}
			// The wire form must round-trip through JSON unchanged.
			data, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			var back distcolor.TraceReport
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back.Rounds != rep.Rounds || back.Messages != rep.Messages || len(back.Phases) != len(rep.Phases) {
				t.Errorf("JSON round-trip changed the report: %+v vs %+v", back, rep)
			}
		})
	}
}

// TestTraceReuseAcrossRuns pins that a fresh trace per run is the contract:
// a second run with a new trace reports only its own cost.
func TestTraceReuseAcrossRuns(t *testing.T) {
	g, err := runcfg.Generate("grid:6x6", 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *distcolor.TraceReport {
		trace := &distcolor.RoundTrace{}
		col, err := distcolor.Run(context.Background(), g, "delta", distcolor.WithTrace(trace))
		if err != nil {
			t.Fatal(err)
		}
		rep := trace.Report("delta")
		if rep.Rounds != col.Rounds {
			t.Fatalf("trace rounds = %d, want %d", rep.Rounds, col.Rounds)
		}
		return rep
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("identical runs traced differently: %+v vs %+v", a, b)
	}
}
